#!/bin/sh
# Smoke test for cmd/cfdserve, run by `make serve-smoke` and the CI job of the
# same name: start the server on fixture rules + data, exercise the API with
# curl, assert the violation counts, and check graceful shutdown on SIGTERM.
set -eu

ADDR="${CFDSERVE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/cfdserve"

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	exit 1
}

go build -o "$BIN" ./cmd/cfdserve

"$BIN" -addr "$ADDR" \
	-rules cmd/cfdserve/testdata/rules.txt \
	-data cmd/cfdserve/testdata/cust.csv &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the server to come up.
i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "server did not come up on $ADDR"
	sleep 0.1
done

# Rules loaded, data bulk loaded, violations present.
health="$(curl -fs "$BASE/health")"
echo "$health" | grep -q '"rules": 2' || fail "expected 2 rules in $health"
echo "$health" | grep -q '"tuples": 8' || fail "expected 8 tuples in $health"

# The fixture's exact dirty set.
viols="$(curl -fs "$BASE/violations")"
echo "$viols" | tr -d ' \n' | grep -q '"dirty":\[0,1,2,3,4,5,7\]' \
	|| fail "unexpected dirty set in $viols"

# POST a batch: Ann splits the (01, 01202) street group further.
post="$(curl -fs -X POST "$BASE/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"rows":[["01","212","9999999","Ann","5th Ave","NYC","01202"]]}')"
echo "$post" | tr -d ' \n' | grep -q '"ids":\[8\]' || fail "unexpected insert response $post"

viols="$(curl -fs "$BASE/violations")"
echo "$viols" | tr -d ' \n' | grep -q '"dirty":\[0,1,2,3,4,5,7,8\]' \
	|| fail "dirty set did not grow after insert: $viols"

# Per-tuple lookup on the freshly inserted tuple.
curl -fs "$BASE/tuples/8/violations" | grep -q 'STR' \
	|| fail "tuple 8 should violate the street FD"

# Graceful shutdown: SIGTERM, clean exit.
kill -TERM "$PID"
wait "$PID" || fail "server did not exit cleanly on SIGTERM"
trap - EXIT

# --- Durability leg: -state, kill, restart, byte-identical violations. ---
STATE="$(mktemp -d)"

"$BIN" -addr "$ADDR" \
	-rules cmd/cfdserve/testdata/rules.txt \
	-data cmd/cfdserve/testdata/cust.csv \
	-state "$STATE" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "durable server did not come up on $ADDR"
	sleep 0.1
done

# Mutate through the atomic batch route: insert two, repair one, delete one.
batch="$(curl -fs -X POST "$BASE/batch" \
	-H 'Content-Type: application/json' \
	-d '{"ops":[
		{"op":"insert","values":["01","212","9999999","Ann","5th Ave","NYC","01202"]},
		{"op":"insert","values":["86","10","8888888","Wei","Main Rd.","BJ","100000"]},
		{"op":"update","id":7,"values":["01","131","2222222","Sean","3rd Str.","EDI","01202"]},
		{"op":"delete","id":9}
	]}')"
echo "$batch" | tr -d ' \n' | grep -q '"ids":\[8,9\]' || fail "unexpected batch response $batch"

# Hot-swap the rule set: keep the street FD, drop the constant city rule,
# add a fresh name->phone FD. The swap is atomic and write-ahead logged.
RULEFILE="$(mktemp)"
cat > "$RULEFILE" <<'EOF'
([CC,ZIP] -> STR, (_, _ || _))
([NM] -> PN, (_ || _))
EOF
version_before="$(curl -fs "$BASE/health" | tr -d ' ' | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
swap="$(curl -fs -X PUT "$BASE/rules" --data-binary @"$RULEFILE")"
echo "$swap" | tr -d ' \n' | grep -q '"swapped":true' || fail "unexpected swap response $swap"
echo "$swap" | tr -d ' \n' | grep -q '"retained":1' || fail "swap should retain the street FD: $swap"
version_after="$(curl -fs "$BASE/health" | tr -d ' ' | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
[ "$version_before" != "$version_after" ] || fail "rules_version did not move on swap"

# A second mutation after the swap, so replay crosses the swap record.
curl -fs -X POST "$BASE/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"values":["01","908","3333333","Zoe","Tree Ave.","MH","07974"]}' >/dev/null \
	|| fail "insert after swap failed"

before="$(curl -fs "$BASE/violations")"
rules_before="$(curl -fs "$BASE/rules")"

# Kill hard (no graceful shutdown): recovery must come from snapshot + WAL.
kill -KILL "$PID"
wait "$PID" 2>/dev/null || true

"$BIN" -addr "$ADDR" -state "$STATE" &
PID=$!

i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "restarted server did not come up on $ADDR"
	sleep 0.1
done

after="$(curl -fs "$BASE/violations")"
[ "$before" = "$after" ] || fail "restarted /violations differs:
--- before ---
$before
--- after ---
$after"

# The restart came back under the swapped-in rule set, byte for byte.
rules_after="$(curl -fs "$BASE/rules")"
[ "$rules_before" = "$rules_after" ] || fail "restarted /rules differs:
--- before ---
$rules_before
--- after ---
$rules_after"
restart_version="$(curl -fs "$BASE/health" | tr -d ' ' | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
[ "$restart_version" = "$version_after" ] || fail "rules_version regressed across restart: $restart_version != $version_after"

# Ids keep counting from where the killed process stopped.
post="$(curl -fs -X POST "$BASE/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"values":["01","908","1111111","Zoe","Tree Ave.","MH","07974"]}')"
echo "$post" | tr -d ' \n' | grep -q '"ids":\[11\]' || fail "id sequence lost across restart: $post"

# --- Delta leg: /v1 polling, deprecation headers, compaction resync. ---

# Legacy aliases answer with deprecation headers; /v1 does not.
curl -fsi "$BASE/violations" | grep -qi '^deprecation: true' \
	|| fail "legacy /violations must send Deprecation: true"
curl -fsi "$BASE/violations" | grep -qi 'rel="successor-version"' \
	|| fail "legacy /violations must link its /v1 successor"
if curl -fsi "$BASE/v1/violations" | grep -qi '^deprecation'; then
	fail "/v1/violations must not be deprecated"
fi

# A full read carries the epoch; polling ?since= that epoch returns the exact
# delta of the next mutation, not the whole report.
epoch="$(curl -fs "$BASE/v1/violations" | tr -d ' ' | sed -n 's/.*"epoch":\([0-9]*\),.*/\1/p')"
[ -n "$epoch" ] || fail "/v1/violations carries no epoch"
curl -fs -X POST "$BASE/v1/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"values":["01","212","9999999","Ann","5th Ave","NYC","01202"]}' >/dev/null \
	|| fail "insert through /v1 failed"
delta="$(curl -fs "$BASE/v1/violations?since=$epoch")"
echo "$delta" | tr -d ' \n' | grep -q "\"epoch\":$((epoch + 1))" \
	|| fail "delta epoch did not advance by one: $delta"
echo "$delta" | tr -d ' \n' | grep -q '"dirty_added":\[12\]' \
	|| fail "delta should carry the inserted tuple: $delta"

kill -TERM "$PID"
wait "$PID" || fail "durable server did not exit cleanly on SIGTERM"
trap - EXIT

# Restart with per-op compaction: the WAL tail (and with it the replayable
# delta history) folds into the snapshot after every mutation.
"$BIN" -addr "$ADDR" -state "$STATE" -compact-every 1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "compacting server did not come up on $ADDR"
	sleep 0.1
done

curl -fs -X DELETE "$BASE/v1/tuples/12" >/dev/null || fail "delete through /v1 failed"
# Wait for the background compaction to fold the WAL away.
i=0
until curl -fs "$BASE/health" | tr -d ' ' | grep -q '"wal_pending":0'; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "background compaction never drained the WAL"
	sleep 0.1
done

# Kill hard and restart: replay finds nothing to rebuild the delta ring from,
# so the old epoch must be refused with 410/compacted and the client resyncs.
kill -KILL "$PID"
wait "$PID" 2>/dev/null || true
"$BIN" -addr "$ADDR" -state "$STATE" &
PID=$!

i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "post-compaction server did not come up on $ADDR"
	sleep 0.1
done

status="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/violations?since=$epoch")"
[ "$status" = "410" ] || fail "stale since should be 410 after compaction, got $status"
curl -s "$BASE/v1/violations?since=$epoch" | tr -d ' \n' | grep -q '"code":"compacted"' \
	|| fail "410 body should carry the compacted error code"
# The resync: a full read hands back the current epoch, from which polling
# resumes with an empty delta.
epoch="$(curl -fs "$BASE/v1/violations" | tr -d ' ' | sed -n 's/.*"epoch":\([0-9]*\),.*/\1/p')"
resync="$(curl -fs "$BASE/v1/violations?since=$epoch")"
echo "$resync" | tr -d ' \n' | grep -q '"added":\[\]' \
	|| fail "resynced poll should be an empty delta: $resync"

kill -TERM "$PID"
wait "$PID" || fail "post-compaction server did not exit cleanly on SIGTERM"
trap - EXIT

# --- Observability leg: /metrics, request ids, health state, pprof. ---
DEBUG_ADDR="${CFDSERVE_DEBUG_ADDR:-127.0.0.1:18081}"

"$BIN" -addr "$ADDR" -state "$STATE" -debug-addr "$DEBUG_ADDR" -log-format json &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "observed server did not come up on $ADDR"
	sleep 0.1
done

# Every API response carries a request id; a well-formed client id is echoed.
curl -fsi "$BASE/v1/health" | grep -qi '^x-request-id: ' \
	|| fail "/v1/health must answer with an X-Request-Id header"
curl -fsi -H 'X-Request-Id: smoke-trace-1' "$BASE/v1/health" \
	| grep -qi '^x-request-id: smoke-trace-1' \
	|| fail "a well-formed client X-Request-Id must be echoed"

# Health reports the in-flight observability state.
health="$(curl -fs "$BASE/v1/health" | tr -d ' \n')"
echo "$health" | grep -q '"compacting":false' || fail "health must report compacting: $health"
echo "$health" | grep -q '"remine_running":false' || fail "health must report remine_running: $health"
echo "$health" | grep -q '"delta_ring":{' || fail "health must report the delta ring: $health"

# A mutation through the API, so commit and WAL series are non-zero.
curl -fs -X POST "$BASE/v1/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"values":["01","212","9999999","Ann","5th Ave","NYC","01202"]}' >/dev/null \
	|| fail "insert on the observed server failed"

metrics="$(curl -fs "$BASE/metrics")"
echo "$metrics" | grep -q '^cfd_engine_commits_total{kind="insert"} 1$' \
	|| fail "insert commit counter did not move in /metrics"
echo "$metrics" | grep -q '^cfd_wal_appends_total{result="ok"} 1$' \
	|| fail "WAL append counter did not move in /metrics"
echo "$metrics" | grep -Eq '^cfd_engine_tuples [0-9]+$' \
	|| fail "engine tuple gauge missing from /metrics"
echo "$metrics" | grep -q '^cfd_engine_delta_ring_capacity ' \
	|| fail "delta ring gauge missing from /metrics"
echo "$metrics" | grep -q 'cfd_http_requests_total{route="/tuples",method="POST",code="2xx"} 1' \
	|| fail "HTTP request counter did not move in /metrics"
echo "$metrics" | grep -q '^cfd_http_request_duration_seconds_bucket' \
	|| fail "HTTP duration histogram missing from /metrics"
case "$metrics" in
*"# EOF") ;;
*) fail "/metrics must end with the OpenMetrics EOF trailer" ;;
esac

# The pprof surface answers on the debug listener only.
curl -fs "http://$DEBUG_ADDR/debug/pprof/" | grep -q 'profiles' \
	|| fail "pprof index not served on -debug-addr"
if curl -fs "$BASE/debug/pprof/" >/dev/null 2>&1; then
	fail "pprof must not leak onto the serving address"
fi

kill -TERM "$PID"
wait "$PID" || fail "observed server did not exit cleanly on SIGTERM"
trap - EXIT

echo "serve-smoke: OK"
