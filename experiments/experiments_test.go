package experiments_test

import (
	"strings"
	"testing"

	"repro/experiments"
)

func TestIDsAndTitles(t *testing.T) {
	ids := experiments.IDs()
	if len(ids) < 14 {
		t.Fatalf("expected at least 14 figures, got %d", len(ids))
	}
	for _, id := range ids {
		if experiments.Title(id) == "" {
			t.Errorf("figure %s has no title", id)
		}
	}
	for _, want := range []string{"fig05", "fig10", "fig16", "ablation", "datasets"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("figure %s missing from IDs()", want)
		}
	}
	if experiments.Title("nope") != "" {
		t.Error("unknown id should have an empty title")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := experiments.Run("fig99", experiments.Config{Quick: true}); err == nil {
		t.Error("unknown figure must error")
	}
}

// TestDatasetsFigure checks the §6.1 shape table at quick scale.
func TestDatasetsFigure(t *testing.T) {
	fig, err := experiments.Run("datasets", experiments.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 3 {
		t.Fatalf("expected 3 data sets, got %d", len(fig.Points))
	}
	for _, p := range fig.Points {
		if p.Series["tuples"] <= 0 || p.Series["attributes"] <= 0 {
			t.Errorf("%s: bad shape %v", p.X, p.Series)
		}
		if p.X == "WBC" && p.Series["attributes"] != 11 {
			t.Errorf("WBC should have 11 attributes, got %v", p.Series["attributes"])
		}
		if p.X == "Chess" && p.Series["attributes"] != 7 {
			t.Errorf("Chess should have 7 attributes, got %v", p.Series["attributes"])
		}
	}
	table := fig.Table()
	if !strings.Contains(table, "WBC") || !strings.Contains(table, "attributes") {
		t.Errorf("table rendering incomplete:\n%s", table)
	}
}

// TestCountFiguresQuick regenerates the two cheap count figures at quick scale
// and validates the monotonicity the paper reports: larger k, fewer CFDs.
func TestCountFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment sweeps in -short mode")
	}
	fig, err := experiments.Run("fig09", experiments.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) < 2 {
		t.Fatalf("fig09 has %d points", len(fig.Points))
	}
	prevTotal := -1.0
	for _, p := range fig.Points {
		total := p.Series["constant CFDs"] + p.Series["variable CFDs"]
		if total <= 0 {
			t.Errorf("k=%s: no CFDs found", p.X)
		}
		if prevTotal >= 0 && total > prevTotal {
			t.Errorf("number of CFDs should not grow with k: %v then %v", prevTotal, total)
		}
		prevTotal = total
	}
}

// TestTimeFigureQuick runs one timing figure at quick scale and checks every
// declared series is populated with positive timings.
func TestTimeFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment sweeps in -short mode")
	}
	fig, err := experiments.Run("fig11", experiments.Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 || len(fig.Points) == 0 {
		t.Fatal("empty figure")
	}
	for _, p := range fig.Points {
		for _, s := range fig.Series {
			v, ok := p.Series[s]
			if !ok || v < 0 {
				t.Errorf("point %s: series %s missing or negative (%v)", p.X, s, v)
			}
		}
	}
	if !strings.Contains(fig.Table(), "CTANE") {
		t.Error("table should mention CTANE")
	}
}
