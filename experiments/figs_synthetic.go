package experiments

import (
	"fmt"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

// Series names used across figures.
const (
	SeriesCFDMiner  = "CFDMiner"
	SeriesCFDMiner2 = "CFDMiner(2)"
	SeriesCTANE     = "CTANE"
	SeriesNaiveFast = "NaiveFast"
	SeriesFastCFD   = "FastCFD"
	SeriesConstant  = "constant CFDs"
	SeriesVariable  = "variable CFDs"
)

// supportRatio returns the SUP% used in Figs. 5–7: the paper's 0.1% at full
// scale, and 0.5% for the scaled-down default and quick sweeps so that the
// absolute threshold k stays in a comparable range despite the smaller DBSIZE.
func supportRatio(cfg Config) float64 {
	if cfg.Full {
		return 0.001
	}
	return 0.005
}

// taxRelation builds a Tax relation for a sweep point.
func taxRelation(cfg Config, size, arity int, cf float64) (*cfd.Relation, error) {
	return dataset.Tax(dataset.TaxConfig{Size: size, Arity: arity, CF: cf, Seed: cfg.seed()})
}

// fig5Sizes returns the DBSIZE sweep and the largest size at which the
// quadratic NaiveFast backend is still run.
func fig5Sizes(cfg Config) (sizes []int, naiveCap, ctaneCap int) {
	switch {
	case cfg.Quick:
		return []int{500, 1000, 2000}, 2000, 2000
	case cfg.Full:
		// The paper sweeps 20K to 1M; NaiveFast is only taken to 300K there.
		return []int{20000, 50000, 100000, 300000, 1000000}, 300000, 1000000
	default:
		return []int{1000, 2000, 5000, 10000, 20000}, 10000, 20000
	}
}

// Fig05 reproduces Fig. 5: response time of CFDMiner, CFDMiner(k=2), CTANE,
// NaiveFast and FastCFD as DBSIZE grows, with ARITY=7, CF=0.7 and SUP%=0.1%.
func Fig05(cfg Config) (*Figure, error) {
	sizes, naiveCap, ctaneCap := fig5Sizes(cfg)
	fig := &Figure{
		ID: "fig05", Title: Title("fig05"),
		XLabel: "DBSIZE", YLabel: "seconds",
	}
	for _, size := range sizes {
		rel, err := taxRelation(cfg, size, 7, 0.7)
		if err != nil {
			return nil, err
		}
		k := supportFromRatio(size, supportRatio(cfg))
		point := Point{X: fmt.Sprintf("%d", size), Series: map[string]float64{}}

		if sec, _, err := timeAlg(cfg, discovery.AlgCFDMiner, rel, discovery.Options{Support: k}); err == nil {
			point.Series[SeriesCFDMiner] = sec
		} else {
			return nil, err
		}
		if sec, _, err := timeAlg(cfg, discovery.AlgCFDMiner, rel, discovery.Options{Support: 2}); err == nil {
			point.Series[SeriesCFDMiner2] = sec
		} else {
			return nil, err
		}
		if size <= ctaneCap {
			if sec, _, err := timeAlg(cfg, discovery.AlgCTANE, rel, discovery.Options{Support: k}); err == nil {
				point.Series[SeriesCTANE] = sec
			} else {
				return nil, err
			}
		}
		if size <= naiveCap {
			if sec, _, err := timeAlg(cfg, discovery.AlgNaiveFast, rel, discovery.Options{Support: k}); err == nil {
				point.Series[SeriesNaiveFast] = sec
			} else {
				return nil, err
			}
		}
		if sec, _, err := timeAlg(cfg, discovery.AlgFastCFD, rel, discovery.Options{Support: k}); err == nil {
			point.Series[SeriesFastCFD] = sec
		} else {
			return nil, err
		}
		fig.Points = append(fig.Points, point)
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesCFDMiner, SeriesCFDMiner2, SeriesCTANE, SeriesNaiveFast, SeriesFastCFD})
	return fig, nil
}

// Fig06 reproduces Fig. 6: the number of constant and variable CFDs found by
// FastCFD over the same DBSIZE sweep as Fig. 5.
func Fig06(cfg Config) (*Figure, error) {
	sizes, _, _ := fig5Sizes(cfg)
	fig := &Figure{
		ID: "fig06", Title: Title("fig06"),
		XLabel: "DBSIZE", YLabel: "#CFDs",
	}
	for _, size := range sizes {
		rel, err := taxRelation(cfg, size, 7, 0.7)
		if err != nil {
			return nil, err
		}
		k := supportFromRatio(size, supportRatio(cfg))
		_, res, err := timeAlg(cfg, discovery.AlgFastCFD, rel, discovery.Options{Support: k})
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{
			X: fmt.Sprintf("%d", size),
			Series: map[string]float64{
				SeriesConstant: float64(res.Constant()),
				SeriesVariable: float64(res.Variable()),
			},
		})
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesConstant, SeriesVariable})
	return fig, nil
}

// Fig07 reproduces Fig. 7: response time as ARITY grows, with CF=0.7 and
// SUP%=0.1%. CTANE is only run up to a cap, mirroring the paper's observation
// that it cannot complete beyond arity 17.
func Fig07(cfg Config) (*Figure, error) {
	var arities []int
	var size, ctaneCap int
	ratio := supportRatio(cfg)
	switch {
	case cfg.Quick:
		arities, size, ctaneCap = []int{7, 9, 11}, 1000, 9
		ratio = 0.01
	case cfg.Full:
		arities, size, ctaneCap = []int{7, 11, 15, 19, 23, 27, 31}, 20000, 17
	default:
		arities, size, ctaneCap = []int{7, 9, 11, 13, 15}, 2000, 11
		// The scaled-down DBSIZE needs a proportionally higher SUP% to keep the
		// cover (and therefore the per-point cost) comparable to the paper's.
		ratio = 0.01
	}
	fig := &Figure{
		ID: "fig07", Title: Title("fig07"),
		XLabel: "ARITY", YLabel: "seconds",
	}
	k := supportFromRatio(size, ratio)
	for _, arity := range arities {
		rel, err := taxRelation(cfg, size, arity, 0.7)
		if err != nil {
			return nil, err
		}
		point := Point{X: fmt.Sprintf("%d", arity), Series: map[string]float64{}}
		if sec, _, err := timeAlg(cfg, discovery.AlgCFDMiner, rel, discovery.Options{Support: k}); err == nil {
			point.Series[SeriesCFDMiner] = sec
		} else {
			return nil, err
		}
		if arity <= ctaneCap {
			if sec, _, err := timeAlg(cfg, discovery.AlgCTANE, rel, discovery.Options{Support: k}); err == nil {
				point.Series[SeriesCTANE] = sec
			} else {
				return nil, err
			}
		}
		if sec, _, err := timeAlg(cfg, discovery.AlgNaiveFast, rel, discovery.Options{Support: k}); err == nil {
			point.Series[SeriesNaiveFast] = sec
		} else {
			return nil, err
		}
		if sec, _, err := timeAlg(cfg, discovery.AlgFastCFD, rel, discovery.Options{Support: k}); err == nil {
			point.Series[SeriesFastCFD] = sec
		} else {
			return nil, err
		}
		fig.Points = append(fig.Points, point)
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesCFDMiner, SeriesCTANE, SeriesNaiveFast, SeriesFastCFD})
	return fig, nil
}

// fig8Params returns the DBSIZE and support sweep of the k-sensitivity
// experiment.
func fig8Params(cfg Config) (size int, ks []int) {
	switch {
	case cfg.Quick:
		return 2000, []int{10, 20, 40}
	case cfg.Full:
		return 100000, []int{50, 75, 100, 125, 150}
	default:
		return 5000, []int{20, 40, 80, 160}
	}
}

// Fig08 reproduces Fig. 8: response time as the support threshold k grows,
// showing that CTANE is highly sensitive to k while NaiveFast and FastCFD are
// not.
func Fig08(cfg Config) (*Figure, error) {
	size, ks := fig8Params(cfg)
	rel, err := taxRelation(cfg, size, 7, 0.7)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig08", Title: Title("fig08"),
		XLabel: "k", YLabel: "seconds",
	}
	for _, k := range ks {
		point := Point{X: fmt.Sprintf("%d", k), Series: map[string]float64{}}
		for alg, series := range map[discovery.Algorithm]string{
			discovery.AlgCTANE:     SeriesCTANE,
			discovery.AlgNaiveFast: SeriesNaiveFast,
			discovery.AlgFastCFD:   SeriesFastCFD,
		} {
			sec, _, err := timeAlg(cfg, alg, rel, discovery.Options{Support: k})
			if err != nil {
				return nil, err
			}
			point.Series[series] = sec
		}
		fig.Points = append(fig.Points, point)
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesCTANE, SeriesNaiveFast, SeriesFastCFD})
	return fig, nil
}

// Fig09 reproduces Fig. 9: the number of constant and variable CFDs found as k
// grows (fewer CFDs for larger k).
func Fig09(cfg Config) (*Figure, error) {
	size, ks := fig8Params(cfg)
	rel, err := taxRelation(cfg, size, 7, 0.7)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig09", Title: Title("fig09"),
		XLabel: "k", YLabel: "#CFDs",
	}
	for _, k := range ks {
		_, res, err := timeAlg(cfg, discovery.AlgFastCFD, rel, discovery.Options{Support: k})
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{
			X: fmt.Sprintf("%d", k),
			Series: map[string]float64{
				SeriesConstant: float64(res.Constant()),
				SeriesVariable: float64(res.Variable()),
			},
		})
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesConstant, SeriesVariable})
	return fig, nil
}

// Fig10 reproduces Fig. 10: response time as the correlation factor CF varies.
// Smaller CF means smaller active domains, more frequent patterns and more
// work for the levelwise algorithm.
func Fig10(cfg Config) (*Figure, error) {
	var size, k int
	switch {
	case cfg.Quick:
		size, k = 1000, 10
	case cfg.Full:
		size, k = 50000, 50
	default:
		size, k = 3000, 15
	}
	cfs := []float64{0.3, 0.5, 0.7}
	fig := &Figure{
		ID: "fig10", Title: Title("fig10"),
		XLabel: "CF", YLabel: "seconds",
	}
	for _, cf := range cfs {
		rel, err := taxRelation(cfg, size, 9, cf)
		if err != nil {
			return nil, err
		}
		point := Point{X: fmt.Sprintf("%.1f", cf), Series: map[string]float64{}}
		for alg, series := range map[discovery.Algorithm]string{
			discovery.AlgCTANE:     SeriesCTANE,
			discovery.AlgNaiveFast: SeriesNaiveFast,
			discovery.AlgFastCFD:   SeriesFastCFD,
		} {
			sec, _, err := timeAlg(cfg, alg, rel, discovery.Options{Support: k})
			if err != nil {
				return nil, err
			}
			point.Series[series] = sec
		}
		fig.Points = append(fig.Points, point)
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesCTANE, SeriesNaiveFast, SeriesFastCFD})
	return fig, nil
}

// Ablation is an extension experiment (not a paper figure): it isolates the
// two design choices FastCFD stacks on top of the naive depth-first search —
// the closed-item-set difference sets and the CFDMiner delegation of constant
// CFDs — at a single representative configuration.
func Ablation(cfg Config) (*Figure, error) {
	var size int
	switch {
	case cfg.Quick:
		size = 1000
	case cfg.Full:
		size = 50000
	default:
		size = 10000
	}
	rel, err := taxRelation(cfg, size, 9, 0.7)
	if err != nil {
		return nil, err
	}
	k := supportFromRatio(size, supportRatio(cfg))
	fig := &Figure{
		ID: "ablation", Title: Title("ablation"),
		XLabel: "variant", YLabel: "seconds",
	}
	variants := []struct {
		name string
		alg  discovery.Algorithm
		opts discovery.Options
	}{
		{"FastCFD (closed diffsets + CFDMiner constants)", discovery.AlgFastCFD, discovery.Options{Support: k}},
		{"FastCFD without CFDMiner delegation", discovery.AlgFastCFD, discovery.Options{Support: k, DisableItemsetOptimisation: true}},
		{"NaiveFast (partition diffsets)", discovery.AlgNaiveFast, discovery.Options{Support: k}},
		{"CTANE", discovery.AlgCTANE, discovery.Options{Support: k}},
	}
	for _, v := range variants {
		sec, res, err := timeAlg(cfg, v.alg, rel, v.opts)
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{
			X: v.name,
			Series: map[string]float64{
				"seconds": sec,
				"#CFDs":   float64(res.Len()),
			},
		})
	}
	fig.Series = []string{"seconds", "#CFDs"}
	return fig, nil
}
