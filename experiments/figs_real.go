package experiments

import (
	"fmt"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

// realDataset describes one of the §6.2.2 real-data experiments. The UCI data
// sets themselves cannot be shipped with an offline build, so shape-preserving
// synthesisers stand in for them (see DESIGN.md, "Substitutions").
type realDataset struct {
	name   string
	build  func(cfg Config) (*cfd.Relation, error)
	ks     func(cfg Config) []int
	maxLHS int
}

func wbcDataset() realDataset {
	return realDataset{
		name: "WBC",
		build: func(cfg Config) (*cfd.Relation, error) {
			size := dataset.WBCSize
			if cfg.Quick {
				size = 200
			}
			return dataset.WisconsinLike(size, cfg.seed()), nil
		},
		ks: func(cfg Config) []int {
			if cfg.Quick {
				return []int{20, 60}
			}
			return []int{10, 20, 40, 80}
		},
		// The WBC schema has 11 attributes with dense domains; the pattern
		// lattice is bounded to keep the default run laptop-sized. The same
		// bound applies to both algorithms, so their relative behaviour (the
		// shape of Fig. 11) is preserved.
		maxLHS: 3,
	}
}

func chessDataset() realDataset {
	return realDataset{
		name: "Chess",
		build: func(cfg Config) (*cfd.Relation, error) {
			size := 3000
			if cfg.Quick {
				size = 1000
			}
			if cfg.Full {
				size = dataset.ChessSize
			}
			return dataset.ChessLike(size, cfg.seed()), nil
		},
		ks: func(cfg Config) []int {
			if cfg.Quick {
				return []int{20, 60}
			}
			return []int{10, 20, 40, 80}
		},
		maxLHS: 3,
	}
}

func taxDataset() realDataset {
	return realDataset{
		name: "Tax",
		build: func(cfg Config) (*cfd.Relation, error) {
			size := 5000
			if cfg.Quick {
				size = 1000
			}
			if cfg.Full {
				size = 100000
			}
			return dataset.Tax(dataset.TaxConfig{Size: size, Arity: 9, CF: 0.7, Seed: cfg.seed()})
		},
		ks: func(cfg Config) []int {
			if cfg.Quick {
				return []int{10, 40}
			}
			return []int{20, 40, 80, 160}
		},
		maxLHS: 0,
	}
}

// realTimeFigure reproduces the Figs. 11–13 pattern: CTANE and FastCFD
// response time as k varies on one data set.
func realTimeFigure(id string, ds realDataset, cfg Config) (*Figure, error) {
	rel, err := ds.build(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: Title(id), XLabel: "k", YLabel: "seconds"}
	for _, k := range ds.ks(cfg) {
		point := Point{X: fmt.Sprintf("%d", k), Series: map[string]float64{}}
		for alg, series := range map[discovery.Algorithm]string{
			discovery.AlgCTANE:   SeriesCTANE,
			discovery.AlgFastCFD: SeriesFastCFD,
		} {
			sec, _, err := timeAlg(cfg, alg, rel, discovery.Options{Support: k, MaxLHS: ds.maxLHS})
			if err != nil {
				return nil, err
			}
			point.Series[series] = sec
		}
		fig.Points = append(fig.Points, point)
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesCTANE, SeriesFastCFD})
	return fig, nil
}

// realCountFigure reproduces the Figs. 14–16 pattern: the number of CFDs
// discovered as k varies on one data set.
func realCountFigure(id string, ds realDataset, cfg Config) (*Figure, error) {
	rel, err := ds.build(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: Title(id), XLabel: "k", YLabel: "#CFDs"}
	for _, k := range ds.ks(cfg) {
		_, res, err := timeAlg(cfg, discovery.AlgFastCFD, rel, discovery.Options{Support: k, MaxLHS: ds.maxLHS})
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{
			X: fmt.Sprintf("%d", k),
			Series: map[string]float64{
				SeriesConstant: float64(res.Constant()),
				SeriesVariable: float64(res.Variable()),
				"total":        float64(res.Len()),
			},
		})
	}
	fig.Series = sortedSeries(fig.Points, []string{SeriesConstant, SeriesVariable, "total"})
	return fig, nil
}

// Fig11 reproduces Fig. 11: CTANE vs FastCFD on the Wisconsin-breast-cancer-
// shaped data set as k varies.
func Fig11(cfg Config) (*Figure, error) { return realTimeFigure("fig11", wbcDataset(), cfg) }

// Fig12 reproduces Fig. 12: CTANE vs FastCFD on the Chess-shaped data set.
func Fig12(cfg Config) (*Figure, error) { return realTimeFigure("fig12", chessDataset(), cfg) }

// Fig13 reproduces Fig. 13: CTANE vs FastCFD on the synthetic Tax data set.
func Fig13(cfg Config) (*Figure, error) { return realTimeFigure("fig13", taxDataset(), cfg) }

// Fig14 reproduces Fig. 14: number of CFDs on the WBC-shaped data set vs k.
func Fig14(cfg Config) (*Figure, error) { return realCountFigure("fig14", wbcDataset(), cfg) }

// Fig15 reproduces Fig. 15: number of CFDs on the Chess-shaped data set vs k.
func Fig15(cfg Config) (*Figure, error) { return realCountFigure("fig15", chessDataset(), cfg) }

// Fig16 reproduces Fig. 16: number of CFDs on the Tax data set vs k.
func Fig16(cfg Config) (*Figure, error) { return realCountFigure("fig16", taxDataset(), cfg) }

// Datasets reports the shapes of the evaluation data sets, mirroring the
// parameter table of §6.1.
func Datasets(cfg Config) (*Figure, error) {
	fig := &Figure{ID: "datasets", Title: Title("datasets"), XLabel: "data set", YLabel: "count"}
	for _, ds := range []realDataset{wbcDataset(), chessDataset(), taxDataset()} {
		rel, err := ds.build(cfg)
		if err != nil {
			return nil, err
		}
		fig.Points = append(fig.Points, Point{
			X: ds.name,
			Series: map[string]float64{
				"tuples":     float64(rel.Size()),
				"attributes": float64(rel.Arity()),
			},
		})
	}
	fig.Series = []string{"tuples", "attributes"}
	return fig, nil
}
