// Package experiments regenerates every figure of the paper's evaluation
// (§6): the scalability sweeps over DBSIZE, ARITY, the support threshold k and
// the correlation factor CF on synthetic Tax data (Figs. 5–10), and the
// real-data experiments on the Wisconsin-breast-cancer- and Chess-shaped data
// sets plus Tax (Figs. 11–16).
//
// Each figure is produced as a Figure value: a swept parameter on the x-axis
// and one series per algorithm (response time in seconds) or per CFD class
// (counts). The cmd/cfdbench command prints these tables and bench_test.go
// exercises representative points as Go benchmarks.
//
// Scale: by default the sweeps are scaled down from the paper's testbed sizes
// so that the whole suite runs on a laptop in minutes; Config.Full selects the
// paper-scale parameters (which can take hours, as they did in the paper), and
// Config.Quick selects a minimal smoke-test scale.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/cfd"
	"repro/discovery"
	"repro/rules"
)

// Config controls the scale of the experiment sweeps.
type Config struct {
	// Full selects the paper-scale parameters (DBSIZE up to 1M, ARITY up to 31,
	// the full UCI data set sizes). Expect multi-hour runs, as in the paper.
	Full bool
	// Quick selects a minimal scale for smoke tests and Go benchmarks.
	Quick bool
	// Seed makes data generation deterministic (default 1).
	Seed int64
	// Workers bounds the goroutines of each discovery run (0 = one per CPU,
	// 1 = sequential; see discovery.Options.Workers). Paper-faithful timing
	// comparisons should set 1, since the paper's testbed was single-threaded.
	Workers int
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Point is one x-position of a figure: the swept parameter's value and the
// measured series at that position. Missing series (an algorithm skipped at
// that scale) are absent from the map.
type Point struct {
	X      string
	Series map[string]float64
}

// Figure is one reproduced figure of the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []string
	Points []Point
}

// Runner produces a figure under a scale configuration.
type Runner func(Config) (*Figure, error)

// figureIDs lists the figure identifiers in presentation order.
var figureIDs = []string{
	"fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
	"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"ablation", "datasets",
}

// figureTitles maps figure ids to their human-readable titles.
var figureTitles = map[string]string{
	"fig05":    "Scalability w.r.t. DBSIZE (Tax, ARITY=7, CF=0.7, fixed SUP%)",
	"fig06":    "Number of CFDs found w.r.t. DBSIZE",
	"fig07":    "Scalability w.r.t. ARITY (Tax, CF=0.7, fixed SUP%)",
	"fig08":    "Scalability w.r.t. support threshold k (Tax)",
	"fig09":    "Number of CFDs found w.r.t. k",
	"fig10":    "Scalability w.r.t. correlation factor CF (Tax)",
	"fig11":    "Wisconsin breast cancer: response time vs k",
	"fig12":    "Chess: response time vs k",
	"fig13":    "Tax: response time vs k",
	"fig14":    "Wisconsin breast cancer: number of CFDs vs k",
	"fig15":    "Chess: number of CFDs vs k",
	"fig16":    "Tax: number of CFDs vs k",
	"ablation": "Ablation: FastCFD optimisations (extension, not a paper figure)",
	"datasets": "Data set shapes (§6.1 table)",
}

// runners returns the runner for each figure id. It is a function (not a
// package variable) to avoid an initialisation cycle between the runners and
// the title lookup they use.
func runners() map[string]Runner {
	return map[string]Runner{
		"fig05": Fig05, "fig06": Fig06, "fig07": Fig07, "fig08": Fig08,
		"fig09": Fig09, "fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
		"fig13": Fig13, "fig14": Fig14, "fig15": Fig15, "fig16": Fig16,
		"ablation": Ablation, "datasets": Datasets,
	}
}

// IDs lists the available figure identifiers in presentation order.
func IDs() []string {
	return append([]string(nil), figureIDs...)
}

// Title returns the title of a figure id, or the empty string if unknown.
func Title(id string) string { return figureTitles[id] }

// Run regenerates the figure with the given id.
func Run(id string, cfg Config) (*Figure, error) {
	r, ok := runners()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (available: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// Table renders the figure as a fixed-width text table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x-axis: %s, values: %s\n", f.XLabel, f.YLabel)
	header := append([]string{f.XLabel}, f.Series...)
	widths := make([]int, len(header))
	rows := [][]string{header}
	for _, p := range f.Points {
		row := []string{p.X}
		for _, s := range f.Series {
			v, ok := p.Series[s]
			switch {
			case !ok:
				row = append(row, "-")
			case f.YLabel == "seconds":
				row = append(row, fmt.Sprintf("%.3f", v))
			default:
				row = append(row, fmt.Sprintf("%.0f", v))
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]))
				b.WriteString("  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// timeAlg runs one algorithm through the streaming engine under the
// configuration's worker budget and returns its response time in seconds
// together with the collected rule set.
func timeAlg(cfg Config, alg discovery.Algorithm, rel *cfd.Relation, opts discovery.Options) (float64, *rules.Set, error) {
	opts.Workers = cfg.Workers
	eng := discovery.NewEngine(alg, rel, opts.EngineOptions()...)
	start := time.Now()
	set, err := eng.Run(context.Background())
	if err != nil {
		return 0, nil, err
	}
	return time.Since(start).Seconds(), set, nil
}

// supportFromRatio converts the paper's SUP% into an absolute threshold. The
// floor of 5 keeps the scaled-down sweeps from degenerating into the k=2 worst
// case that only the paper-scale DBSIZE values would justify.
func supportFromRatio(size int, ratio float64) int {
	k := int(math.Round(float64(size) * ratio))
	if k < 5 {
		k = 5
	}
	return k
}

// sortedSeries collects every series name appearing in the points.
func sortedSeries(points []Point, preferred []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range preferred {
		seen[s] = true
		out = append(out, s)
	}
	var extra []string
	for _, p := range points {
		for s := range p.Series {
			if !seen[s] {
				seen[s] = true
				extra = append(extra, s)
			}
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
