package cleaning_test

import (
	"testing"

	"repro/cfd"
	"repro/cleaning"
	"repro/dataset"
	"repro/discovery"
	"repro/rules"
)

func custRules() *rules.Set {
	return rules.Of(
		cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
	)
}

func TestDetectOnCust(t *testing.T) {
	rel := dataset.Cust()
	rep, err := cleaning.Detect(rel, custRules())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("cust violates both rules; report should not be clean")
	}
	if rep.RulesChecked != 2 || len(rep.Violations) != 2 {
		t.Fatalf("RulesChecked=%d Violations=%d", rep.RulesChecked, len(rep.Violations))
	}
	// t8 (index 7) violates the constant rule (AC -> CT, (131||EDI)).
	foundT8 := false
	for _, t0 := range rep.DirtyTuples {
		if t0 == 7 {
			foundT8 = true
		}
	}
	if !foundT8 {
		t.Errorf("t8 should be flagged dirty: %v", rep.DirtyTuples)
	}
	byTuple := cleaning.ByTuple(rep)
	if len(byTuple) != len(rep.DirtyTuples) {
		t.Errorf("ByTuple covers %d tuples, dirty set has %d", len(byTuple), len(rep.DirtyTuples))
	}
	for _, tr := range byTuple {
		if len(tr.Rules) == 0 {
			t.Errorf("tuple %d flagged with no rules", tr.Tuple)
		}
	}
}

func TestDetectErrorsAndSkips(t *testing.T) {
	rel := dataset.Cust()
	// Unknown attribute: hard error.
	if _, err := cleaning.Detect(rel, rules.Of(cfd.NewFD([]string{"BOGUS"}, "CT"))); err == nil {
		t.Error("unknown attribute must error")
	}
	if _, err := cleaning.Detect(rel, rules.Of(cfd.NewFD([]string{"CC"}, "BOGUS"))); err == nil {
		t.Error("unknown RHS attribute must error")
	}
	// Malformed rule: hard error.
	bad := cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"01", "02"}, RHSPattern: "_"}
	if _, err := cleaning.Detect(rel, rules.Of(bad)); err == nil {
		t.Error("malformed rule must error")
	}
	// Constant outside the active domain: the rule matches nothing and is skipped.
	set := rules.Of(cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"99"}, RHSPattern: "XXX"})
	rep, err := cleaning.Detect(rel, set)
	if err != nil {
		t.Fatalf("out-of-domain constant should be skipped, got error %v", err)
	}
	if !rep.Clean() {
		t.Error("out-of-domain rule cannot be violated")
	}
}

func TestDetectEmptyRelation(t *testing.T) {
	rel := cfd.MustRelation("A", "B")
	rep, err := cleaning.Detect(rel, rules.Of(cfd.NewFD([]string{"A"}, "B")))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.RulesChecked != 1 || len(rep.DirtyTuples) != 0 {
		t.Fatalf("empty relation must be clean: %+v", rep)
	}
	// No rules at all is equally fine.
	rep, err = cleaning.Detect(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.RulesChecked != 0 {
		t.Fatalf("no-rule report: %+v", rep)
	}
}

func TestDetectConstantOnlyCFDs(t *testing.T) {
	rel, err := cfd.FromRows([]string{"A", "B"}, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := rules.Of(
		// Fully constant CFD, violated by tuple 2 alone and, through the
		// pair semantics, by the whole a-group it disagrees with.
		cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"a"}, RHSPattern: "x"},
		// Constant CFD that holds.
		cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"b"}, RHSPattern: "x"},
	)
	rep, err := cleaning.Detect(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("exactly the first rule is violated: %+v", rep.Violations)
	}
	if got := rep.Violations[0].Tuples; len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("violating tuples = %v, want [0 1 2]", got)
	}
	// An out-of-domain RHS constant is violated by every LHS-matching tuple.
	rep, err = cleaning.Detect(rel, rules.Of(
		cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"b"}, RHSPattern: "zzz"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DirtyTuples) != 1 || rep.DirtyTuples[0] != 3 {
		t.Fatalf("dirty = %v, want [3]", rep.DirtyTuples)
	}
}

func TestApplyRepairsIdempotent(t *testing.T) {
	rel, err := cfd.FromRows([]string{"A", "B"}, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := rules.Of(cfd.NewFD([]string{"A"}, "B"))
	repairs, err := cleaning.SuggestRepairs(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	once := cleaning.ApplyRepairs(rel, repairs)
	twice := cleaning.ApplyRepairs(once, repairs)
	for i := 0; i < once.Size(); i++ {
		r1, r2 := once.Row(i), twice.Row(i)
		for a := range r1 {
			if r1[a] != r2[a] {
				t.Fatalf("tuple %d differs after re-applying repairs: %v vs %v", i, r1, r2)
			}
		}
	}
	// Re-suggesting on the repaired relation finds nothing left to fix.
	again, err := cleaning.SuggestRepairs(once, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("repaired relation still suggests repairs: %+v", again)
	}
}

func TestSuggestRepairsConstantRule(t *testing.T) {
	rel := dataset.Cust()
	set := rules.Of(cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"})
	repairs, err := cleaning.SuggestRepairs(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	// The single-tuple violation of t8 should be repaired to the rule constant.
	found := false
	for _, rp := range repairs {
		if rp.Tuple == 7 && rp.Attribute == "CT" {
			found = true
			if rp.Current != "UN" || rp.Suggested != "EDI" {
				t.Errorf("repair for t8 = %+v", rp)
			}
		}
	}
	if !found {
		t.Fatalf("expected a repair for t8, got %+v", repairs)
	}
	repaired := cleaning.ApplyRepairs(rel, repairs)
	rep, err := cleaning.Detect(repaired, set)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Error("applying the suggested repairs should satisfy the constant rule")
	}
}

func TestSuggestRepairsVariableRule(t *testing.T) {
	// B should be determined by A; one of the three tuples in the a-group
	// deviates and should be repaired to the majority value.
	rel, err := cfd.FromRows([]string{"A", "B"}, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := rules.Of(cfd.NewFD([]string{"A"}, "B"))
	repairs, err := cleaning.SuggestRepairs(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 1 || repairs[0].Tuple != 2 || repairs[0].Suggested != "x" {
		t.Fatalf("unexpected repairs: %+v", repairs)
	}
	repaired := cleaning.ApplyRepairs(rel, repairs)
	rep, err := cleaning.Detect(repaired, set)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Error("repaired relation should satisfy the FD")
	}
}

func TestSuspects(t *testing.T) {
	// Under the FD A -> B, the minority tuple of the "a" group is the suspect;
	// under the constant rule, the tuple with the wrong constant is.
	rel, err := cfd.FromRows([]string{"A", "B"}, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "z"}, {"c", "w"},
	})
	if err != nil {
		t.Fatal(err)
	}
	set := rules.Of(
		cfd.NewFD([]string{"A"}, "B"),
		cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"c"}, RHSPattern: "v"},
	)
	suspects, err := cleaning.Suspects(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 2 || suspects[0] != 2 || suspects[1] != 4 {
		t.Errorf("suspects = %v, want [2 4]", suspects)
	}
	// The broad dirty set is larger than the suspect set.
	rep, err := cleaning.Detect(rel, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DirtyTuples) <= len(suspects) {
		t.Errorf("DirtyTuples (%v) should be a superset of suspects (%v)", rep.DirtyTuples, suspects)
	}
}

// TestEndToEndCleaningPipeline exercises the full motivating workflow of the
// paper: discover rules on clean data, inject noise, detect the dirty tuples.
func TestEndToEndCleaningPipeline(t *testing.T) {
	clean, err := dataset.Tax(dataset.TaxConfig{Size: 400, Arity: 7, CF: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := discovery.FastCFD(clean, discovery.Options{Support: 8, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CFDs) == 0 {
		t.Fatal("no rules discovered on clean data")
	}
	dirty, perturbed := dataset.InjectNoise(clean, 0.05, 7)
	rep, err := cleaning.Detect(dirty, res.Set())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("noise injection should trigger at least one violation")
	}
	// At least one genuinely perturbed tuple must be caught.
	perturbedSet := make(map[int]bool, len(perturbed))
	for _, p := range perturbed {
		perturbedSet[p] = true
	}
	caught := 0
	for _, d := range rep.DirtyTuples {
		if perturbedSet[d] {
			caught++
		}
	}
	if caught == 0 {
		t.Error("no perturbed tuple was flagged by the discovered rules")
	}
}
