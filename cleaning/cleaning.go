// Package cleaning is the data-cleaning application layer motivating the
// paper: discovered CFDs are used as data quality rules to detect, localise
// and suggest repairs for inconsistencies in a relation. It covers the
// workflow of §1 of the paper (and of the repair literature it cites): mine a
// rules.Set from a trusted sample with repro/discovery (Engine.Run), then run
// Detect / SuggestRepairs with that set on the data to be cleaned.
package cleaning

import (
	"fmt"
	"sort"

	"repro/cfd"
	"repro/rules"
	"repro/violation"
)

// Violation records the tuples of a relation that violate one rule.
type Violation struct {
	Rule   cfd.CFD
	Tuples []int
}

// Report is the outcome of running a set of rules against a relation.
type Report struct {
	// Violations holds one entry per violated rule, in rule order.
	Violations []Violation
	// DirtyTuples is the sorted union of all violating tuple indexes.
	DirtyTuples []int
	// RulesChecked is the number of rules evaluated.
	RulesChecked int
}

// Clean reports whether no violations were found.
func (rep *Report) Clean() bool { return len(rep.Violations) == 0 }

// Detect evaluates every rule of the set against the relation and collects
// the violating tuples. Rules referring to constants outside the relation's
// active domain cannot be violated (no tuple matches them) and are skipped
// silently; rules naming unknown attributes are reported as errors.
//
// Detection is delegated to the indexed engine of repro/violation (bulk load,
// parallel across rules), so batch and incremental detection share one
// matcher; this function keeps only the attribute validation and the report
// conversion.
func Detect(rel *cfd.Relation, set *rules.Set) (*Report, error) {
	known := make(map[string]bool)
	for _, a := range rel.Attributes() {
		known[a] = true
	}
	for _, rule := range set.CFDs() {
		if err := rule.Validate(); err != nil {
			return nil, err
		}
		if !known[rule.RHS] {
			return nil, fmt.Errorf("cleaning: rule %s: unknown attribute %q", rule, rule.RHS)
		}
		for _, a := range rule.LHS {
			if !known[a] {
				return nil, fmt.Errorf("cleaning: rule %s: unknown attribute %q", rule, a)
			}
		}
	}
	eng, err := violation.New(rel.Attributes(), set, violation.Options{})
	if err != nil {
		return nil, err
	}
	if err := eng.BulkLoad(rel); err != nil {
		return nil, err
	}
	vrep := eng.Report()
	rep := &Report{RulesChecked: vrep.RulesChecked, DirtyTuples: vrep.DirtyTuples}
	for _, v := range vrep.Violations {
		rep.Violations = append(rep.Violations, Violation(v))
	}
	return rep, nil
}

// TupleReport lists the rules violated by one tuple.
type TupleReport struct {
	Tuple int
	Rules []cfd.CFD
}

// ByTuple regroups a report by tuple, which is the view a human reviewer or a
// repair algorithm works from.
func ByTuple(rep *Report) []TupleReport {
	m := make(map[int][]cfd.CFD)
	for _, v := range rep.Violations {
		for _, t := range v.Tuples {
			m[t] = append(m[t], v.Rule)
		}
	}
	out := make([]TupleReport, 0, len(m))
	for t, rules := range m {
		out = append(out, TupleReport{Tuple: t, Rules: rules})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple < out[j].Tuple })
	return out
}

// Suspects returns the tuples most likely to be erroneous under the rules:
// tuples that violate a constant-RHS rule on their own, plus tuples holding a
// minority right-hand-side value within their left-hand-side group under a
// variable rule. This is a sharper signal than Report.DirtyTuples, which
// contains every tuple involved in any violating pair (for a variable rule a
// single wrong tuple drags its whole group in).
func Suspects(rel *cfd.Relation, set *rules.Set) ([]int, error) {
	repairs, err := SuggestRepairs(rel, set)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool)
	for _, rp := range repairs {
		seen[rp.Tuple] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out, nil
}

// Repair is a suggested single-attribute correction for one tuple.
type Repair struct {
	Tuple     int
	Attribute string
	Current   string
	Suggested string
	Rule      cfd.CFD
}

// SuggestRepairs proposes value corrections for tuples that violate the rules:
//
//   - for a rule with a constant right-hand side, a violating tuple's RHS value
//     is corrected to the rule's constant;
//   - for a variable rule, a violating tuple's RHS value is corrected to the
//     most common RHS value among the tuples sharing its left-hand side.
//
// The suggestions are heuristics in the spirit of the repair methods the paper
// cites ([2], [27]); they are not guaranteed to be a minimal repair.
func SuggestRepairs(rel *cfd.Relation, set *rules.Set) ([]Repair, error) {
	rep, err := Detect(rel, set)
	if err != nil {
		return nil, err
	}
	var out []Repair
	for _, v := range rep.Violations {
		rule := v.Rule
		if !rule.IsVariable() {
			for _, t := range v.Tuples {
				cur, err := rel.Value(t, rule.RHS)
				if err != nil {
					return nil, err
				}
				if cur != rule.RHSPattern {
					out = append(out, Repair{
						Tuple: t, Attribute: rule.RHS,
						Current: cur, Suggested: rule.RHSPattern, Rule: rule,
					})
				}
			}
			continue
		}
		// Variable rule: group the violating tuples by their LHS values and
		// suggest the majority RHS value of each group (falling back to the
		// group's lexicographically smallest value on ties).
		groups := make(map[string][]int)
		for _, t := range v.Tuples {
			key := ""
			for _, a := range rule.LHS {
				val, err := rel.Value(t, a)
				if err != nil {
					return nil, err
				}
				key += val + "\x00"
			}
			groups[key] = append(groups[key], t)
		}
		for _, tuples := range groups {
			counts := make(map[string]int)
			for _, t := range tuples {
				val, err := rel.Value(t, rule.RHS)
				if err != nil {
					return nil, err
				}
				counts[val]++
			}
			best := ""
			for val, n := range counts {
				if best == "" || n > counts[best] || (n == counts[best] && val < best) {
					best = val
				}
			}
			for _, t := range tuples {
				cur, _ := rel.Value(t, rule.RHS)
				if cur != best {
					out = append(out, Repair{
						Tuple: t, Attribute: rule.RHS,
						Current: cur, Suggested: best, Rule: rule,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tuple != out[j].Tuple {
			return out[i].Tuple < out[j].Tuple
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out, nil
}

// ApplyRepairs returns a copy of the relation with the suggested repairs
// applied. When several repairs target the same tuple and attribute, the first
// one wins.
func ApplyRepairs(rel *cfd.Relation, repairs []Repair) *cfd.Relation {
	attrs := rel.Attributes()
	index := make(map[string]int, len(attrs))
	for i, a := range attrs {
		index[a] = i
	}
	patch := make(map[[2]int]string)
	for _, rp := range repairs {
		a, ok := index[rp.Attribute]
		if !ok {
			continue
		}
		key := [2]int{rp.Tuple, a}
		if _, dup := patch[key]; !dup {
			patch[key] = rp.Suggested
		}
	}
	out := cfd.MustRelation(attrs...)
	for t := 0; t < rel.Size(); t++ {
		row := append([]string(nil), rel.Row(t)...)
		for a := range attrs {
			if v, ok := patch[[2]int{t, a}]; ok {
				row[a] = v
			}
		}
		if err := out.Append(row...); err != nil {
			panic(err)
		}
	}
	return out
}
